/** @file Unit tests for NuRAPID's tag array (forward-pointer side). */

#include <gtest/gtest.h>

#include "nurapid/tag_array.hh"

namespace nurapid {
namespace {

/** Flips entry (set, way) valid through the by-value view. */
void
markValid(TagArray &t, std::uint32_t set, std::uint32_t way)
{
    TagArray::Entry e = t.entry(set, way);
    e.valid = true;
    t.setEntry(set, way, e);
}

TEST(TagArray, Shape)
{
    TagArray t(8ull << 20, 8, 128);
    EXPECT_EQ(t.numSets(), 8192u);
    EXPECT_EQ(t.assoc(), 8u);
    EXPECT_EQ(t.blockBytes(), 128u);
}

TEST(TagArray, MissOnEmpty)
{
    TagArray t(64 * 1024, 4, 128);
    auto l = t.lookup(0x1234500);
    EXPECT_FALSE(l.hit);
    EXPECT_EQ(l.set, t.setOf(0x1234500));
}

TEST(TagArray, InsertAndLookup)
{
    TagArray t(64 * 1024, 4, 128);
    const Addr addr = 0x7f3480;
    const auto set = t.setOf(addr);
    TagArray::Entry e = t.entry(set, 2);
    e.valid = true;
    e.tag = t.tagOf(addr);
    e.group = 1;
    e.frame = 77;
    t.setEntry(set, 2, e);
    auto l = t.lookup(addr);
    ASSERT_TRUE(l.hit);
    EXPECT_EQ(l.set, set);
    EXPECT_EQ(l.way, 2u);
    EXPECT_EQ(t.entry(l.set, l.way).frame, 77u);
}

TEST(TagArray, BlockAddrRoundTrip)
{
    TagArray t(64 * 1024, 4, 128);
    for (Addr addr : {Addr{0}, Addr{0x80}, Addr{0xdeadbe00},
                      Addr{0x123456780}}) {
        const Addr block = addr & ~Addr{127};
        const auto set = t.setOf(block);
        TagArray::Entry e = t.entry(set, 0);
        e.valid = true;
        e.tag = t.tagOf(block);
        t.setEntry(set, 0, e);
        EXPECT_EQ(t.blockAddr(set, 0), block);
    }
}

TEST(TagArray, VictimPrefersInvalidWay)
{
    TagArray t(64 * 1024, 4, 128);
    markValid(t, 3, 0);
    markValid(t, 3, 1);
    t.touch(3, 0);
    t.touch(3, 1);
    EXPECT_EQ(t.victimWay(3), 2u);  // first invalid way
}

TEST(TagArray, VictimIsSetLru)
{
    TagArray t(64 * 1024, 4, 128);
    for (std::uint32_t w = 0; w < 4; ++w) {
        markValid(t, 5, w);
        t.touch(5, w);
    }
    t.touch(5, 0);  // way 1 is now LRU
    EXPECT_EQ(t.victimWay(5), 1u);
    t.touch(5, 1);
    EXPECT_EQ(t.victimWay(5), 2u);
}

TEST(TagArray, ValidCount)
{
    TagArray t(64 * 1024, 4, 128);
    EXPECT_EQ(t.validCount(), 0u);
    markValid(t, 0, 0);
    markValid(t, 9, 3);
    EXPECT_EQ(t.validCount(), 2u);
}

TEST(TagArray, SetIndexUsesLowBlockBits)
{
    TagArray t(64 * 1024, 4, 128);
    // Consecutive blocks map to consecutive sets.
    EXPECT_EQ(t.setOf(0x0) + 1, t.setOf(0x80));
    // Same set after wrapping numSets blocks.
    EXPECT_EQ(t.setOf(0x0),
              t.setOf(static_cast<Addr>(t.numSets()) * 128));
}

} // namespace
} // namespace nurapid
