/**
 * @file
 * Packed-trace tests: the pre-generated buffer must replay
 * record-for-record identically to live SyntheticTrace generation for
 * every workload profile (this is what makes the devirtualized sweep
 * path bit-identical to the original), the process-wide registry must
 * share and extend buffers correctly, and RunEngine workers sharing
 * one buffer must produce bit-identical metrics.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "sim/runner/run_engine.hh"
#include "sim/system.hh"
#include "trace/packed_trace.hh"
#include "trace/profiles.hh"
#include "trace/synthetic.hh"

namespace nurapid {
namespace {

void
expectSameRecord(const TraceRecord &a, const TraceRecord &b,
                 const char *what, std::uint64_t index)
{
    ASSERT_EQ(a.addr, b.addr) << what << " record " << index;
    ASSERT_EQ(a.op, b.op) << what << " record " << index;
    ASSERT_EQ(a.inst_gap, b.inst_gap) << what << " record " << index;
    ASSERT_EQ(a.depends_on_prev, b.depends_on_prev)
        << what << " record " << index;
    ASSERT_EQ(a.latency_critical, b.latency_critical)
        << what << " record " << index;
    ASSERT_EQ(a.has_branch, b.has_branch) << what << " record " << index;
    ASSERT_EQ(a.branch_taken, b.branch_taken)
        << what << " record " << index;
    ASSERT_EQ(a.branch_pc, b.branch_pc) << what << " record " << index;
}

TEST(PackedTrace, ReplayMatchesLiveGenerationForEveryWorkload)
{
    constexpr std::uint64_t kRecords = 30'000;
    for (const WorkloadProfile &prof : workloadSuite()) {
        const PackedTrace packed(prof, kRecords);
        ASSERT_EQ(packed.size(), kRecords) << prof.name;

        SyntheticTrace live(prof);
        PackedTrace::Cursor cur = packed.cursorAll();
        TraceRecord a, b;
        for (std::uint64_t i = 0; i < kRecords; ++i) {
            ASSERT_TRUE(cur.next(a)) << prof.name;
            ASSERT_TRUE(live.next(b)) << prof.name;
            expectSameRecord(a, b, prof.name.c_str(), i);
        }
        EXPECT_FALSE(cur.next(a)) << prof.name
            << ": cursor must drain after its range";
        EXPECT_EQ(cur.remaining(), 0u);
    }
}

TEST(PackedTrace, ExtensionEqualsOneLongerGeneration)
{
    const WorkloadProfile prof = findProfile("mcf");
    const PackedTrace prefix(prof, 10'000);
    const PackedTrace extended(prefix, 25'000);
    const PackedTrace fresh(prof, 25'000);

    ASSERT_EQ(extended.size(), 25'000u);
    PackedTrace::Cursor a = extended.cursorAll();
    PackedTrace::Cursor b = fresh.cursorAll();
    TraceRecord ra, rb;
    for (std::uint64_t i = 0; i < 25'000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        expectSameRecord(ra, rb, "extension", i);
    }
}

TEST(PackedTrace, CursorRangeReplaysTheMiddleOfTheStream)
{
    const WorkloadProfile prof = findProfile("gzip");
    const PackedTrace packed(prof, 5'000);

    SyntheticTrace live(prof);
    TraceRecord skip;
    for (int i = 0; i < 1'000; ++i)
        ASSERT_TRUE(live.next(skip));

    PackedTrace::Cursor cur = packed.cursorRange(1'000, 5'000);
    EXPECT_EQ(cur.remaining(), 4'000u);
    TraceRecord a, b;
    for (std::uint64_t i = 0; i < 4'000; ++i) {
        ASSERT_TRUE(cur.next(a));
        ASSERT_TRUE(live.next(b));
        expectSameRecord(a, b, "range", i);
    }
    EXPECT_FALSE(cur.next(a));
}

TEST(PackedTrace, RegistrySharesAndExtendsBuffers)
{
    const WorkloadProfile prof = findProfile("applu");
    const auto p1 = sharedPackedTrace(prof, 5'000);
    const auto p2 = sharedPackedTrace(prof, 4'000);
    EXPECT_EQ(p1.get(), p2.get())
        << "a shorter request must reuse the longer buffer";

    const auto p3 = sharedPackedTrace(prof, 8'000);
    EXPECT_GE(p3->size(), 8'000u);
    PackedTrace::Cursor a = p1->cursorAll();
    PackedTrace::Cursor b = p3->cursor(p1->size());
    TraceRecord ra, rb;
    std::uint64_t i = 0;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        expectSameRecord(ra, rb, "registry extension prefix", i++);
    }
}

TEST(PackedTrace, SourceAdapterMatchesLiveTraceAndResets)
{
    const WorkloadProfile prof = findProfile("twolf");
    const auto shared = sharedPackedTrace(prof, 3'000);
    PackedTraceSource src(shared);
    SyntheticTrace live(prof);

    TraceRecord a, b;
    for (std::uint64_t i = 0; i < 3'000; ++i) {
        ASSERT_TRUE(src.next(a));
        ASSERT_TRUE(live.next(b));
        expectSameRecord(a, b, "adapter", i);
    }
    EXPECT_FALSE(src.next(a));

    src.reset();
    live.reset();
    for (std::uint64_t i = 0; i < 3'000; ++i) {
        ASSERT_TRUE(src.next(a));
        ASSERT_TRUE(live.next(b));
        expectSameRecord(a, b, "adapter after reset", i);
    }
}

TEST(PackedTrace, WorkersSharingOneBufferStayBitIdentical)
{
    // Four organizations against the *same* workload: every worker
    // replays the same shared packed buffer concurrently.
    const SimLength len{20'000, 60'000};
    const WorkloadProfile prof = findProfile("mcf");
    std::vector<RunRequest> reqs;
    for (const auto &org :
         {OrgSpec::baseline(), OrgSpec::nurapidDefault(),
          OrgSpec::dnucaSsPerformance(), OrgSpec::coupledSA()}) {
        reqs.push_back(RunRequest{org, prof, len});
    }

    RunEngineOptions serial_opts;
    serial_opts.jobs = 1;
    serial_opts.use_cache = false;
    RunEngineOptions parallel_opts = serial_opts;
    parallel_opts.jobs = 2;

    RunEngine serial(serial_opts);
    RunEngine parallel(parallel_opts);
    const auto a = serial.runMany(reqs);
    const auto b = parallel.runMany(reqs);

    ASSERT_EQ(a.size(), reqs.size());
    ASSERT_EQ(b.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        EXPECT_TRUE(identicalMetrics(a[i], b[i]))
            << reqs[i].spec.description()
            << ": workers sharing one packed buffer diverged";
        EXPECT_GT(b[i].instructions, 0u);
    }
}

TEST(PackedTrace, DiskCacheRoundTripIsBitIdentical)
{
    // A distinct seed mix keeps this test's registry entries and cache
    // files disjoint from every other test in the binary.
    constexpr std::uint64_t kMix = 99;
    const WorkloadProfile prof = findProfile("swim");
    // Fresh directory per run: a leftover file from an earlier run
    // would satisfy the very first request from disk.
    std::string dir = ::testing::TempDir() + "nurapid_trace_XXXXXX";
    ASSERT_NE(::mkdtemp(dir.data()), nullptr);
    ::setenv("NURAPID_TRACE_CACHE_DIR", dir.c_str(), 1);

    // First request generates and persists.
    auto generated = sharedPackedTrace(prof, 6'000, kMix);
    ASSERT_TRUE(generated->extendable());
    const PackedTrace reference(prof, 9'000, kMix);

    // Drop the in-memory buffer so the next request must hit the file.
    generated.reset();
    dropUnusedPackedTraces();
    auto loaded = sharedPackedTrace(prof, 6'000, kMix);
    EXPECT_FALSE(loaded->extendable())
        << "second process-equivalent request should load from disk";
    PackedTrace::Cursor a = loaded->cursor(6'000);
    PackedTrace::Cursor b = reference.cursor(6'000);
    TraceRecord ra, rb;
    for (std::uint64_t i = 0; i < 6'000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        expectSameRecord(ra, rb, "disk round-trip", i);
    }

    // A longer request cannot extend a loaded buffer: it regenerates
    // from scratch and rewrites the file, still bit-identical.
    auto longer = sharedPackedTrace(prof, 9'000, kMix);
    ASSERT_GE(longer->size(), 9'000u);
    a = longer->cursor(9'000);
    b = reference.cursor(9'000);
    for (std::uint64_t i = 0; i < 9'000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        expectSameRecord(ra, rb, "regenerated past loaded buffer", i);
    }

    // And the rewritten longer file loads back too.
    longer.reset();
    loaded.reset();
    dropUnusedPackedTraces();
    auto reloaded = sharedPackedTrace(prof, 9'000, kMix);
    EXPECT_FALSE(reloaded->extendable());
    a = reloaded->cursor(9'000);
    b = reference.cursor(9'000);
    for (std::uint64_t i = 0; i < 9'000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        expectSameRecord(ra, rb, "reloaded longer file", i);
    }

    ::unsetenv("NURAPID_TRACE_CACHE_DIR");
}

TEST(PackedTrace, LiveGenerationFallbackIsBitIdentical)
{
    const SimLength len{15'000, 45'000};
    const WorkloadProfile prof = findProfile("art");

    ASSERT_TRUE(packedTraceEnabled());
    System pregen(OrgSpec::nurapidDefault(), prof, len);
    const RunMetrics with = pregen.runAll();

    ::setenv("NURAPID_TRACE_PREGEN", "0", 1);
    EXPECT_FALSE(packedTraceEnabled());
    System live_sys(OrgSpec::nurapidDefault(), prof, len);
    const RunMetrics without = live_sys.runAll();
    ::unsetenv("NURAPID_TRACE_PREGEN");

    EXPECT_TRUE(identicalMetrics(with, without))
        << "pre-generated replay diverged from live generation "
        << "(ipc " << with.ipc << " vs " << without.ipc << ")";
    EXPECT_GT(with.instructions, 0u);
}

} // namespace
} // namespace nurapid
