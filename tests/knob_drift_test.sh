#!/usr/bin/env sh
# The NURAPID_* environment-knob list must not drift between the two
# places it is documented: the README knob table and the env section
# of `nurapid_sim --help`. A knob added to one but not the other fails
# this test. Run by ctest as
#   knob_drift_test.sh SIM_BINARY README_PATH
set -eu

sim="$1"
readme="$2"

# --help env section: knobs lead their line after two spaces.
help_knobs=$("$sim" --help | grep -o '^  NURAPID_[A-Z_]*' |
    tr -d ' ' | sort -u)

# README table: knob rows look like  | `NURAPID_FOO` | ... |
readme_knobs=$(grep -o '^| `NURAPID_[A-Z_]*`' "$readme" |
    grep -o 'NURAPID_[A-Z_]*' | sort -u)

[ -n "$help_knobs" ] || { echo "FAIL: no knobs in --help"; exit 1; }
[ -n "$readme_knobs" ] || { echo "FAIL: no knobs in README"; exit 1; }

if [ "$help_knobs" != "$readme_knobs" ]; then
    echo "FAIL: knob lists drifted between --help and README"
    echo "--help only:"
    printf '%s\n' "$help_knobs" | grep -vxF "$readme_knobs" || true
    echo "README only:"
    printf '%s\n' "$readme_knobs" | grep -vxF "$help_knobs" || true
    exit 1
fi

echo "knob_drift_test: $(printf '%s\n' "$help_knobs" | wc -l)" \
     "knobs documented identically in --help and README"
