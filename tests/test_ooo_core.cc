/** @file Tests for the trace-driven out-of-order core timing model. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/ooo_core.hh"
#include "mem/conventional_l2l3.hh"
#include "sim/config.hh"
#include "timing/geometry.hh"

namespace nurapid {
namespace {

/** Scripted trace source for precise timing checks. */
class ScriptedTrace : public TraceSource
{
  public:
    std::vector<TraceRecord> records;
    std::size_t pos = 0;

    bool
    next(TraceRecord &r) override
    {
        if (pos >= records.size())
            return false;
        r = records[pos++];
        return true;
    }

    void reset() override { pos = 0; }
};

/** Fixed-latency lower memory for controlled experiments. */
class FixedLower : public LowerMemory
{
  public:
    explicit FixedLower(Cycles lat) : lat_(lat), stats_("fixed") {}

    Result
    access(Addr, AccessType type, Cycle) override
    {
        if (type != AccessType::Writeback)
            ++count;
        Result r;
        r.latency = type == AccessType::Writeback ? Cycles{0} : lat_;
        r.hit = true;
        return r;
    }

    EnergyNJ dynamicEnergyNJ() const override { return 0; }
    EnergyNJ cacheEnergyNJ() const override { return 0; }
    const std::string &name() const override { return name_; }
    StatGroup &stats() override { return stats_; }
    const StatGroup &stats() const override { return stats_; }
    const Histogram &regionHits() const override { return hist_; }
    void resetStats() override {}
    void forEachResident(const ResidentFn &) const override {}
    bool audit(AuditSink &) const override { return true; }

    std::uint64_t count = 0;

  private:
    Cycles lat_;
    std::string name_ = "fixed";
    StatGroup stats_;
    Histogram hist_{1};
};

struct Rig
{
    SetAssocCache l1i{l1iOrg()};
    SetAssocCache l1d{l1dOrg()};
    std::unique_ptr<FixedLower> lower;
    std::unique_ptr<OooCore> core;

    explicit Rig(Cycles l2_lat, CoreParams p = defaultCoreParams())
        : lower(std::make_unique<FixedLower>(l2_lat)),
          core(std::make_unique<OooCore>(p, l1i, l1d, *lower))
    {
    }
};

TraceRecord
load(Addr a, std::uint16_t gap = 10, bool dep = false,
     bool critical = false)
{
    TraceRecord r;
    r.addr = a;
    r.op = TraceOp::Load;
    r.inst_gap = gap;
    r.depends_on_prev = dep;
    r.latency_critical = critical;
    return r;
}

TEST(OooCore, IdealIpcBoundedByWidth)
{
    Rig rig(10);
    ScriptedTrace t;
    for (int i = 0; i < 5000; ++i)
        t.records.push_back(load(0x1000, 15));  // always same L1 block
    rig.core->run(t, t.records.size());
    EXPECT_LE(rig.core->ipc(), 8.0 + 1e-9);
    EXPECT_GT(rig.core->ipc(), 7.0);  // L1 hits fully hidden
}

TEST(OooCore, HigherL2LatencyLowersIpc)
{
    double prev_ipc = 100.0;
    for (Cycles lat : {Cycles{10}, Cycles{50}, Cycles{200}}) {
        Rig rig(lat);
        ScriptedTrace t;
        Rng rng(3);
        for (int i = 0; i < 20000; ++i) {
            // Stream of distinct critical loads -> all L1 misses.
            t.records.push_back(load(Addr{0x100000} + i * 4096, 6,
                                     false, true));
        }
        rig.core->run(t, t.records.size());
        EXPECT_LT(rig.core->ipc(), prev_ipc);
        prev_ipc = rig.core->ipc();
    }
}

TEST(OooCore, DefaultMshrsDoNotMergeSectors)
{
    // Default (32 B, SimpleScalar-style) MSHRs: each L1-block sector
    // of a streamed 128 B L2 block is its own L2 access — the burst
    // traffic that loads D-NUCA's banks.
    Rig rig(100);
    ScriptedTrace t;
    for (int i = 0; i < 8; ++i)
        t.records.push_back(load(0x200000 + i * 32, 1));
    rig.core->run(t, t.records.size());
    EXPECT_EQ(rig.lower->count, 8u);
    EXPECT_EQ(rig.core->mshrFile().stats().counterValue("merges"), 0u);
}

TEST(OooCore, WideMshrsMergeSectorsOfOneL2Block)
{
    CoreParams p = defaultCoreParams();
    p.mshr_block_bytes = 128;  // sector-merging MSHRs
    Rig rig(100, p);
    ScriptedTrace t;
    // Two 128 B L2 blocks, four 32 B sectors each: two lower accesses,
    // six merges.
    for (int i = 0; i < 8; ++i)
        t.records.push_back(load(0x200000 + i * 32, 1));
    rig.core->run(t, t.records.size());
    EXPECT_EQ(rig.lower->count, 2u);
    EXPECT_EQ(rig.core->mshrFile().stats().counterValue("merges"), 6u);
}

TEST(OooCore, MshrFullStalls)
{
    CoreParams p = defaultCoreParams();
    p.mshrs = 2;
    Rig rig(400, p);
    ScriptedTrace t;
    for (int i = 0; i < 32; ++i)
        t.records.push_back(load(Addr{0x300000} + i * 8192, 1));
    rig.core->run(t, t.records.size());
    EXPECT_GT(rig.core->mshrFile().stats().counterValue("full_stalls"),
              0u);
}

TEST(OooCore, DependentChainSerializes)
{
    // Two traces, same loads; in one each load depends on the prior.
    auto run = [&](bool dep) {
        Rig rig(60);
        ScriptedTrace t;
        for (int i = 0; i < 2000; ++i)
            t.records.push_back(load(Addr{0x400000} + i * 4096, 2, dep));
        rig.core->run(t, t.records.size());
        return rig.core->cycles();
    };
    EXPECT_GT(run(true), run(false) * 3 / 2);
}

TEST(OooCore, MispredictsAddPenalty)
{
    auto run = [&](bool predictable) {
        Rig rig(10);
        ScriptedTrace t;
        Rng rng(5);
        for (int i = 0; i < 4000; ++i) {
            TraceRecord r = load(0x1000, 10);
            r.has_branch = true;
            r.branch_pc = 0x7000 + (i % 8) * 4;
            r.branch_taken = predictable ? true : rng.chance(0.5);
            t.records.push_back(r);
        }
        rig.core->run(t, t.records.size());
        return rig.core->cycles();
    };
    EXPECT_GT(run(false), run(true) + 4000 / 2 * 9 / 2);
}

TEST(OooCore, WritebacksReachLowerMemory)
{
    Rig rig(20);
    ScriptedTrace t;
    // Write a stream large enough to force dirty L1 evictions.
    for (int i = 0; i < 8000; ++i) {
        TraceRecord r = load(Addr{0x500000} + i * 32, 4);
        r.op = TraceOp::Store;
        t.records.push_back(r);
    }
    rig.core->run(t, t.records.size());
    EXPECT_GT(rig.l1d.stats().counterValue("writebacks"), 0u);
}

TEST(OooCore, ResetStatsKeepsAbsoluteTime)
{
    Rig rig(50);
    ScriptedTrace t;
    for (int i = 0; i < 3000; ++i)
        t.records.push_back(load(Addr{0x600000} + i * 4096, 6));
    rig.core->run(t, 1500);
    const auto warm_cycles = rig.core->cycles();
    EXPECT_GT(warm_cycles, 0u);
    rig.core->resetStats();
    EXPECT_EQ(rig.core->instructions(), 0u);
    rig.core->run(t, 1500);
    // Measured cycles must be on the order of the second half only.
    EXPECT_LT(rig.core->cycles(), warm_cycles * 3 / 2);
    EXPECT_GT(rig.core->ipc(), 0.0);
}

TEST(OooCore, IfetchGoesThroughL1I)
{
    Rig rig(30);
    ScriptedTrace t;
    for (int i = 0; i < 100; ++i) {
        TraceRecord r;
        r.op = TraceOp::Ifetch;
        r.addr = 0xf0000000 + i * 32;
        r.inst_gap = 3;
        t.records.push_back(r);
    }
    rig.core->run(t, t.records.size());
    EXPECT_EQ(rig.core->l1iAccesses(), 100u);
    EXPECT_GT(rig.l1i.misses(), 0u);
    EXPECT_EQ(rig.core->l1dAccesses(), 0u);
}

} // namespace
} // namespace nurapid
