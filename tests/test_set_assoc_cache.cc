/** @file Unit tests for the generic set-associative cache. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/set_assoc_cache.hh"

namespace nurapid {
namespace {

CacheOrg
smallOrg(std::uint32_t assoc = 2, std::uint64_t capacity = 4096,
         std::uint32_t block = 64)
{
    return {"test", capacity, assoc, block, ReplPolicy::LRU, 1};
}

TEST(CacheOrg, Arithmetic)
{
    CacheOrg org = smallOrg(2, 4096, 64);
    EXPECT_EQ(org.numBlocks(), 64u);
    EXPECT_EQ(org.numSets(), 32u);
}

TEST(SetAssocCache, ColdMissThenHit)
{
    SetAssocCache c(smallOrg());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1030, false).hit);  // same 64 B block
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, LruEvictionOrder)
{
    // 2-way: fill both ways of one set, touch the first, then force an
    // eviction: the second (LRU) must leave.
    SetAssocCache c(smallOrg(2, 4096, 64));
    const Addr set_stride = 64 * 32;  // same set index
    c.access(0 * set_stride, false);
    c.access(1 * set_stride, false);
    c.access(0 * set_stride, false);          // way A becomes MRU
    auto r = c.access(2 * set_stride, false); // evicts way B
    ASSERT_TRUE(r.evicted);
    EXPECT_EQ(r.evicted_addr, 1 * set_stride);
    EXPECT_TRUE(c.contains(0 * set_stride));
    EXPECT_FALSE(c.contains(1 * set_stride));
}

TEST(SetAssocCache, DirtyEvictionReported)
{
    SetAssocCache c(smallOrg(1, 1024, 64));
    c.access(0x0, true);  // write -> dirty
    auto r = c.access(0x0 + 1024, false);  // same set (direct-mapped)
    ASSERT_TRUE(r.evicted);
    EXPECT_TRUE(r.evicted_dirty);
    EXPECT_EQ(r.evicted_addr, 0x0u);
}

TEST(SetAssocCache, CleanEvictionNotDirty)
{
    SetAssocCache c(smallOrg(1, 1024, 64));
    c.access(0x0, false);
    auto r = c.access(0x0 + 1024, false);
    ASSERT_TRUE(r.evicted);
    EXPECT_FALSE(r.evicted_dirty);
}

TEST(SetAssocCache, MarkDirtyAndInvalidate)
{
    SetAssocCache c(smallOrg());
    c.access(0x40, false);
    EXPECT_TRUE(c.markDirty(0x40));
    EXPECT_FALSE(c.markDirty(0x123456));
    EXPECT_TRUE(c.invalidate(0x40));   // returns was-dirty
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.invalidate(0x40));  // already gone
}

TEST(SetAssocCache, WriteSetsDirtyOnHit)
{
    SetAssocCache c(smallOrg(1, 1024, 64));
    c.access(0x0, false);
    c.access(0x0, true);  // hit, becomes dirty
    auto r = c.access(0x0 + 1024, false);
    EXPECT_TRUE(r.evicted_dirty);
}

TEST(SetAssocCache, MissRatio)
{
    SetAssocCache c(smallOrg());
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.25);
}

struct OrgCase
{
    std::uint32_t assoc;
    std::uint64_t capacity;
    std::uint32_t block;
    ReplPolicy repl;
};

class CachePropertyTest : public ::testing::TestWithParam<OrgCase>
{
};

TEST_P(CachePropertyTest, WorkingSetWithinCapacityAlwaysHitsSteadyState)
{
    const auto [assoc, capacity, block, repl] = GetParam();
    SetAssocCache c({"p", capacity, assoc, block, repl, 1});
    // A working set equal to half the capacity, touched round-robin,
    // must fully reside after the first pass (no aliasing possible).
    const std::uint64_t blocks = capacity / block / 2;
    for (std::uint64_t i = 0; i < blocks; ++i)
        c.access(i * block, false);
    const auto misses_after_warm = c.misses();
    for (int pass = 0; pass < 3; ++pass)
        for (std::uint64_t i = 0; i < blocks; ++i)
            EXPECT_TRUE(c.access(i * block, false).hit);
    EXPECT_EQ(c.misses(), misses_after_warm);
}

TEST_P(CachePropertyTest, NeverMoreValidBlocksThanCapacity)
{
    const auto [assoc, capacity, block, repl] = GetParam();
    SetAssocCache c({"p", capacity, assoc, block, repl, 1});
    Rng rng(5);
    std::uint64_t evictions = 0, fills = 0;
    for (int i = 0; i < 20000; ++i) {
        auto r = c.access(rng.below64(capacity * 8) & ~Addr{block - 1},
                          rng.chance(0.3));
        if (!r.hit)
            ++fills;
        if (r.evicted)
            ++evictions;
    }
    // fills - evictions = live blocks <= capacity/block.
    EXPECT_LE(fills - evictions, capacity / block);
}

INSTANTIATE_TEST_SUITE_P(
    Orgs, CachePropertyTest,
    ::testing::Values(OrgCase{1, 8192, 64, ReplPolicy::LRU},
                      OrgCase{2, 8192, 64, ReplPolicy::LRU},
                      OrgCase{4, 16384, 32, ReplPolicy::LRU},
                      OrgCase{8, 65536, 128, ReplPolicy::LRU},
                      OrgCase{4, 16384, 64, ReplPolicy::Random},
                      OrgCase{4, 16384, 64, ReplPolicy::TreePLRU},
                      OrgCase{16, 131072, 128, ReplPolicy::Random}));

TEST(SetAssocCacheDeath, BadConfigIsFatal)
{
    EXPECT_DEATH(SetAssocCache({"bad", 0, 2, 64, ReplPolicy::LRU, 1}),
                 "empty|zero capacity");
    EXPECT_DEATH(SetAssocCache({"bad", 4096, 2, 48, ReplPolicy::LRU, 1}),
                 "not pow2");
}

} // namespace
} // namespace nurapid
