#!/usr/bin/env sh
# Regenerates every paper table/figure by running all bench binaries
# with a shared run cache, so the repeated suites (the base hierarchy
# alone is re-used by 7+ binaries) are simulated exactly once and every
# later regeneration is served almost entirely from the cache file.
#
# Usage:
#   scripts/regen_bench.sh [BUILD_DIR] [--jobs N] [--no-cache] [--quiet]
#
# Environment (forwarded to the binaries' run engine):
#   NURAPID_JOBS       worker threads per binary (default: all cores)
#   NURAPID_RUN_CACHE  cache file (default: BUILD_DIR/bench_run_cache.json)
#   NURAPID_SIM_SCALE  simulation length scale
#
# The CMake target `regen-bench` invokes this script with BUILD_DIR set.

set -eu

build_dir=build
quiet=0
while [ $# -gt 0 ]; do
    case "$1" in
      --jobs)
        NURAPID_JOBS="$2"; export NURAPID_JOBS; shift 2 ;;
      --no-cache)
        unset NURAPID_RUN_CACHE || true
        no_cache=1; shift ;;
      --quiet)
        quiet=1; shift ;;
      -h|--help)
        sed -n '2,16p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
      *)
        build_dir="$1"; shift ;;
    esac
done

if [ ! -d "$build_dir/bench" ]; then
    echo "error: '$build_dir/bench' not found (configure and build first:" >&2
    echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
    exit 1
fi

if [ "${no_cache:-0}" -eq 0 ]; then
    NURAPID_RUN_CACHE="${NURAPID_RUN_CACHE:-$build_dir/bench_run_cache.json}"
    export NURAPID_RUN_CACHE
    echo "run cache: $NURAPID_RUN_CACHE"
fi
echo "jobs per binary: ${NURAPID_JOBS:-auto}"

benches="bench_table1_config bench_table2_energies bench_table3_workloads \
bench_table4_latencies bench_fig4_placement bench_fig5_policies \
bench_fig6_policy_perf bench_lru_approximation bench_fig7_dgroups \
bench_fig8_dgroup_perf bench_fig9_dnuca_perf bench_fig10_energy \
bench_fig11_energy_delay bench_ablation_pointers bench_ablation_port \
bench_ablation_seq_tag bench_ablation_snuca"

start=$(date +%s)
for b in $benches; do
    echo "=== $b ==="
    if [ "$quiet" -eq 1 ]; then
        "$build_dir/bench/$b" | tail -n 2
    else
        "$build_dir/bench/$b"
    fi
done
end=$(date +%s)
echo "regen-bench: full sweep in $((end - start)) s"
