#!/usr/bin/env sh
# Regenerates every paper table/figure by running all bench binaries
# with a shared run cache, so the repeated suites (the base hierarchy
# alone is re-used by 7+ binaries) are simulated exactly once and every
# later regeneration is served almost entirely from the cache file.
#
# Usage:
#   scripts/regen_bench.sh [BUILD_DIR] [--jobs N] [--repeat N]
#                          [--no-cache] [--quiet]
#                          [--engine-trace-out FILE]
#
# --engine-trace-out FILE records host-time engine spans (trace
# pregen, distill decode, gang replay, run-cache probe/store,
# per-config simulate) from every bench binary into ONE Chrome trace
# at FILE — the format is append-friendly, so all 17 processes share
# the whole-sweep file; load it in ui.perfetto.dev. Each binary also
# prints an [engine] wall-time footer. Same as NURAPID_ENGINE_TRACE.
#
# --repeat N (default 3) runs every bench binary N times and records
# the *median* per-binary wall_ms, taming host noise in the tracked
# timings. The shared run cache is snapshotted before each binary's
# first run and restored before every repeat, so all N runs redo the
# same simulation work instead of hitting the first run's cache
# entries; repeats past the first print nothing.
#
# Environment (forwarded to the binaries' run engine):
#   NURAPID_JOBS             worker threads per binary (default: all cores)
#   NURAPID_RUN_CACHE        cache file (default: BUILD_DIR/bench_run_cache.json)
#   NURAPID_SIM_SCALE        simulation length scale
#   NURAPID_TRACE_CACHE_DIR  packed-trace disk cache shared by the 17
#                            binaries (default: BUILD_DIR/trace_cache) —
#                            each workload stream is generated once per
#                            sweep, not once per binary
#
# Besides the per-table stdout, the sweep writes BUILD_DIR/BENCH_sweep.json
# with machine-readable timings: per-binary and total wall milliseconds,
# whether the sweep started cold (no pre-existing cache file), and the
# unique-configuration count in the resulting run cache. Timings use
# `date +%s%N` (this container has no /usr/bin/time or bc).
#
# The CMake target `regen-bench` invokes this script with BUILD_DIR set.

set -eu

build_dir=build
quiet=0
repeat=3
while [ $# -gt 0 ]; do
    case "$1" in
      --jobs)
        NURAPID_JOBS="$2"; export NURAPID_JOBS; shift 2 ;;
      --repeat)
        repeat="$2"; shift 2 ;;
      --no-cache)
        unset NURAPID_RUN_CACHE || true
        no_cache=1; shift ;;
      --engine-trace-out)
        NURAPID_ENGINE_TRACE="$2"; export NURAPID_ENGINE_TRACE
        rm -f "$NURAPID_ENGINE_TRACE"; shift 2 ;;
      --quiet)
        quiet=1; shift ;;
      -h|--help)
        sed -n '2,41p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
      *)
        build_dir="$1"; shift ;;
    esac
done

case "$repeat" in
  ''|*[!0-9]*|0)
    echo "error: --repeat needs a positive integer, got '$repeat'" >&2
    exit 2 ;;
esac

if [ ! -d "$build_dir/bench" ]; then
    echo "error: '$build_dir/bench' not found (configure and build first:" >&2
    echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
    exit 1
fi

cold=true
if [ "${no_cache:-0}" -eq 0 ]; then
    NURAPID_RUN_CACHE="${NURAPID_RUN_CACHE:-$build_dir/bench_run_cache.json}"
    export NURAPID_RUN_CACHE
    echo "run cache: $NURAPID_RUN_CACHE"
    [ -s "$NURAPID_RUN_CACHE" ] && cold=false
fi
echo "jobs per binary: ${NURAPID_JOBS:-auto}"

NURAPID_TRACE_CACHE_DIR="${NURAPID_TRACE_CACHE_DIR:-$build_dir/trace_cache}"
export NURAPID_TRACE_CACHE_DIR
mkdir -p "$NURAPID_TRACE_CACHE_DIR"

benches="bench_table1_config bench_table2_energies bench_table3_workloads \
bench_table4_latencies bench_fig4_placement bench_fig5_policies \
bench_fig6_policy_perf bench_lru_approximation bench_fig7_dgroups \
bench_fig8_dgroup_perf bench_fig9_dnuca_perf bench_fig10_energy \
bench_fig11_energy_delay bench_ablation_pointers bench_ablation_port \
bench_ablation_seq_tag bench_ablation_snuca"

sweep_json="$build_dir/BENCH_sweep.json"
binaries_json=""

start_ns=$(date +%s%N)
for b in $benches; do
    echo "=== $b ==="
    # Snapshot the shared run cache so repeats 2..N redo the first
    # run's simulation work instead of reading its cache entries; the
    # last repeat's (identical) cache state is what later binaries see.
    snap=""
    if [ "${no_cache:-0}" -eq 0 ] && [ -n "${NURAPID_RUN_CACHE:-}" ]; then
        snap="$NURAPID_RUN_CACHE.repeat-snap"
        rm -f "$snap"
        [ -s "$NURAPID_RUN_CACHE" ] && cp "$NURAPID_RUN_CACHE" "$snap"
    fi
    times_ms=""
    i=1
    while [ "$i" -le "$repeat" ]; do
        if [ "$i" -gt 1 ] && [ -n "$snap" ]; then
            if [ -s "$snap" ]; then
                cp "$snap" "$NURAPID_RUN_CACHE"
            else
                rm -f "$NURAPID_RUN_CACHE"
            fi
        fi
        b_start_ns=$(date +%s%N)
        if [ "$i" -gt 1 ]; then
            "$build_dir/bench/$b" > /dev/null
        elif [ "$quiet" -eq 1 ]; then
            "$build_dir/bench/$b" | tail -n 2
        else
            "$build_dir/bench/$b"
        fi
        b_end_ns=$(date +%s%N)
        times_ms="$times_ms $(( (b_end_ns - b_start_ns) / 1000000 ))"
        i=$((i + 1))
    done
    [ -n "$snap" ] && rm -f "$snap"
    b_ms=$(printf '%s\n' $times_ms | sort -n | awk \
        '{ v[NR] = $1 } END { print v[int((NR + 1) / 2)] }')
    [ -n "$binaries_json" ] && binaries_json="$binaries_json,"
    binaries_json="$binaries_json
    {\"name\": \"$b\", \"wall_ms\": $b_ms}"
done
end_ns=$(date +%s%N)
total_ms=$(( (end_ns - start_ns) / 1000000 ))

# Unique simulated configurations = "key" entries in the run cache.
unique_configs=0
if [ "${no_cache:-0}" -eq 0 ] && [ -s "$NURAPID_RUN_CACHE" ]; then
    unique_configs=$(grep -o '"key"' "$NURAPID_RUN_CACHE" | wc -l)
fi

host=$(uname -n 2>/dev/null || echo unknown)
cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo unknown)
cat > "$sweep_json" <<EOF
{
  "schema": 1,
  "host": "$host",
  "host_cores": "$cores",
  "host_note": "wall-clock comparable only to sweeps from the same host state; see EXPERIMENTS.md",
  "cold": $cold,
  "jobs": "${NURAPID_JOBS:-auto}",
  "sim_scale": "${NURAPID_SIM_SCALE:-1}",
  "repeat": $repeat,
  "unique_configs": $unique_configs,
  "total_wall_ms": $total_ms,
  "binaries": [$binaries_json
  ]
}
EOF

# Track the perf trajectory across PRs: a full-scale sweep's timing
# summary is copied to the repo root (checked in). Scaled-down smokes
# (check.sh runs with NURAPID_SIM_SCALE=0.05) stay in the build dir so
# they never clobber the tracked numbers.
if [ "${NURAPID_SIM_SCALE:-1}" = "1" ]; then
    repo_root=$(cd "$(dirname "$0")/.." && pwd)
    cp "$sweep_json" "$repo_root/BENCH_sweep.json"
    echo "regen-bench: timings copied to $repo_root/BENCH_sweep.json"
fi

echo "regen-bench: full sweep in $((total_ms / 1000)) s ($total_ms ms," \
     "$unique_configs unique configs; timings in $sweep_json)"
