#!/usr/bin/env sh
# Full correctness gate: builds the simulator under four compiler
# configurations and runs the tier-1 unit suite plus a 10k-iteration
# differential-fuzz smoke (audit hooks compiled in and forced on) under
# each:
#
#   release  RelWithDebInfo, audit hooks compiled in
#   asan     AddressSanitizer + UndefinedBehaviorSanitizer
#   tsan     ThreadSanitizer (checks the parallel run engine)
#   profile  RelWithDebInfo + -DNURAPID_PROFILE=ON (cycle-budget
#            profiler compiled into the hot paths), plus a perf-smoke
#            stage: a short cold sweep (engine-span tracing attached,
#            footer coverage asserted) that must print the profiler
#            footer, finish with a populated 267-entry run cache
#            bit-identical between the distilled and live replays,
#            and stay within 25% of this host's recorded wall-time
#            baselines (per-bench and whole-sweep)
#
# Usage:
#   scripts/check.sh [--fuzz-iters N] [--configs "release asan tsan profile"]
#
# Build trees live in build-check-<config>/ so the default build/ tree
# is never disturbed. Exits non-zero on the first failure.

set -eu

fuzz_iters=10000
configs="release asan tsan profile"
while [ $# -gt 0 ]; do
    case "$1" in
      --fuzz-iters)
        fuzz_iters="$2"; shift 2 ;;
      --configs)
        configs="$2"; shift 2 ;;
      -h|--help)
        sed -n '2,20p' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
      *)
        echo "unknown option '$1' (see --help)" >&2; exit 2 ;;
    esac
done

jobs=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
start=$(date +%s)

# Runs a command with its full output captured in a log file, then
# prints only the log's last few lines. A plain `cmd | tail` pipeline
# would report tail's exit status and let a failing cmd slip past
# `set -e`; here the command's own status is what propagates, and a
# failure replays the whole log.
run_logged() {
    rl_log="$1"
    rl_lines="$2"
    shift 2
    rl_status=0
    "$@" > "$rl_log" 2>&1 || rl_status=$?
    if [ "$rl_status" -ne 0 ]; then
        cat "$rl_log" >&2
        return "$rl_status"
    fi
    tail -n "$rl_lines" "$rl_log"
}

for config in $configs; do
    case "$config" in
      release) flags="-DCMAKE_BUILD_TYPE=RelWithDebInfo" ;;
      asan)    flags="-DNURAPID_SANITIZE=address,undefined" ;;
      tsan)    flags="-DNURAPID_SANITIZE=thread" ;;
      profile) flags="-DCMAKE_BUILD_TYPE=RelWithDebInfo -DNURAPID_PROFILE=ON" ;;
      *)
        echo "unknown config '$config'" >&2; exit 2 ;;
    esac
    dir="build-check-$config"

    echo "=== [$config] configure ($flags) ==="
    # shellcheck disable=SC2086  # flags is a word list on purpose
    cmake -B "$dir" -S . -DNURAPID_AUDIT=ON $flags >/dev/null
    echo "=== [$config] build ==="
    cmake --build "$dir" -j "$jobs" >/dev/null

    echo "=== [$config] ctest -L tier1 ==="
    (cd "$dir" && run_logged ctest_tier1.log 3 \
        ctest -L tier1 -j "$jobs" --output-on-failure)

    if [ "$config" = "release" ]; then
        # The distilled-replay fast path defaults on; the whole suite
        # must also hold with the live per-record loop.
        echo "=== [$config] ctest -L tier1 (NURAPID_DISTILL=0) ==="
        (cd "$dir" && export NURAPID_DISTILL=0 &&
            run_logged ctest_tier1_distill0.log 3 \
                ctest -L tier1 -j "$jobs" --output-on-failure)

        # Gang replay also defaults on; the suite must equally hold
        # with every run scheduled per-organization.
        echo "=== [$config] ctest -L tier1 (NURAPID_GANG=0) ==="
        (cd "$dir" && export NURAPID_GANG=0 &&
            run_logged ctest_tier1_gang0.log 3 \
                ctest -L tier1 -j "$jobs" --output-on-failure)

        # Stream-lookahead prefetch defaults on; the suite must hold
        # with the hints disabled (they never touch simulated state,
        # so this bracket catches any accidental coupling).
        echo "=== [$config] ctest -L tier1 (NURAPID_PREFETCH=0) ==="
        (cd "$dir" && export NURAPID_PREFETCH=0 &&
            run_logged ctest_tier1_prefetch0.log 3 \
                ctest -L tier1 -j "$jobs" --output-on-failure)

        # Scalar-probe fallback + packed rank planes: the suite must
        # hold with the SIMD tag probe forced off, pinning the rank
        # planes against the scalar probe path they coexist with.
        echo "=== [$config] ctest -L tier1 (NURAPID_FORCE_SCALAR_PROBE=1) ==="
        (cd "$dir" && export NURAPID_FORCE_SCALAR_PROBE=1 &&
            run_logged ctest_tier1_scalar.log 3 \
                ctest -L tier1 -j "$jobs" --output-on-failure)

        echo "=== [$config] obs smoke (flight recorder + report) ==="
        obs_dir="$dir/obs_smoke"
        rm -rf "$obs_dir"
        mkdir -p "$obs_dir"
        NURAPID_SIM_SCALE=0.05 "$dir/src/tools/nurapid_sim" \
            --org nurapid --benchmark mcf --obs-interval 8192 \
            --trace-out "$obs_dir/events.jsonl" \
            --metrics-out "$obs_dir/metrics.jsonl" \
            --perfetto-out "$obs_dir/trace.json" > "$obs_dir/sim.log"
        for f in events.jsonl metrics.jsonl trace.json; do
            [ -s "$obs_dir/$f" ] || {
                echo "obs smoke: $f missing or empty" >&2; exit 1; }
        done
        # nurapid_report re-parses both JSONL files with the in-tree
        # JSON parser and exits non-zero on any unparseable line.
        "$dir/src/tools/nurapid_report" "$obs_dir/metrics.jsonl" \
            --events "$obs_dir/events.jsonl" > "$obs_dir/report.log"
        grep -q 'per-epoch timelines' "$obs_dir/report.log" || {
            echo "obs smoke: report printed no timelines" >&2; exit 1; }
        grep -q 'hit distribution' "$obs_dir/report.log" || {
            echo "obs smoke: report printed no distribution table" >&2
            exit 1; }
        # Energy attribution rides the same timeline: every epoch
        # carries an energy object and the report renders the
        # Figure-10-style component table from it.
        grep -q '"energy"' "$obs_dir/metrics.jsonl" || {
            echo "obs smoke: metrics timeline has no energy samples" >&2
            exit 1; }
        grep -q 'energy breakdown' "$obs_dir/report.log" || {
            echo "obs smoke: report printed no energy breakdown" >&2
            exit 1; }

        # Observability must not perturb the simulation and observed
        # runs must never seed the run cache: a fresh-cache suite, an
        # observed suite (which bypasses the cache), and a second
        # fresh-cache suite must leave bit-identical caches modulo
        # wall-clock.
        echo "=== [$config] obs-off determinism (run-cache identity) ==="
        NURAPID_SIM_SCALE=0.02 NURAPID_RUN_CACHE="$obs_dir/cache_a.json" \
            "$dir/src/tools/nurapid_sim" --org dnuca --suite \
            > /dev/null
        NURAPID_SIM_SCALE=0.02 NURAPID_RUN_CACHE="$obs_dir/cache_b.json" \
            "$dir/src/tools/nurapid_sim" --org dnuca --suite \
            --metrics-out "$obs_dir/suite_metrics.jsonl" > /dev/null
        [ -s "$obs_dir/suite_metrics.applu.jsonl" ] || {
            echo "obs: suite run wrote no per-workload metrics" >&2
            exit 1; }
        NURAPID_SIM_SCALE=0.02 NURAPID_RUN_CACHE="$obs_dir/cache_b.json" \
            "$dir/src/tools/nurapid_sim" --org dnuca --suite \
            > /dev/null
        strip_wall() {
            sed 's/"wall_seconds":[-0-9.eE+]*/"wall_seconds":0/g' "$1"
        }
        strip_wall "$obs_dir/cache_a.json" > "$obs_dir/cache_a.norm"
        strip_wall "$obs_dir/cache_b.json" > "$obs_dir/cache_b.norm"
        cmp -s "$obs_dir/cache_a.norm" "$obs_dir/cache_b.norm" || {
            echo "obs: run cache diverged around an observed suite" >&2
            exit 1; }

        # Gang-identity bracket: the all-organizations suite, run once
        # gang-scheduled and once per-organization, must fill caches
        # whose normalized dumps (--dump-cache zeroes wall-clock and
        # strips the gang key fields) are byte-identical.
        echo "=== [$config] gang-identity bracket (gang on vs off) ==="
        gang_dir="$dir/gang_bracket"
        rm -rf "$gang_dir"
        mkdir -p "$gang_dir"
        # The gang-on leg doubles as the engine-trace smoke: spans are
        # host-side only, so tracing one leg cannot perturb the
        # identity comparison below.
        rm -f "$gang_dir/engine_trace.json"
        NURAPID_SIM_SCALE=0.02 NURAPID_RUN_CACHE="$gang_dir/on.json" \
            "$dir/src/tools/nurapid_sim" --org all --suite --gang on \
            --engine-trace-out "$gang_dir/engine_trace.json" \
            > /dev/null 2> "$gang_dir/engine.log"
        NURAPID_SIM_SCALE=0.02 NURAPID_RUN_CACHE="$gang_dir/off.json" \
            "$dir/src/tools/nurapid_sim" --org all --suite --gang off \
            > /dev/null
        [ -s "$gang_dir/engine_trace.json" ] || {
            echo "engine trace: no trace written" >&2; exit 1; }
        grep -q '"ph":"X"' "$gang_dir/engine_trace.json" || {
            echo "engine trace: no spans in trace" >&2; exit 1; }
        # The [engine] footer must account for >= 95% of the process
        # wall time: the top-level run-unit spans cover everything the
        # workers do, leaving only a few fixed ms of startup/teardown
        # outside any span.
        awk '/^\[engine\] wall/ { gsub(/,/, ""); w += $3; c += $7 }
             END { pct = w > 0 ? 100 * c / w : 0;
                   printf "engine trace: %.1f%% of wall covered\n", pct;
                   exit !(pct >= 95) }' "$gang_dir/engine.log" || {
            echo "engine trace: span coverage below 95%" \
                 "(see $gang_dir/engine.log)" >&2
            exit 1; }
        "$dir/src/tools/nurapid_sim" --dump-cache "$gang_dir/on.json" \
            > "$gang_dir/on.dump"
        "$dir/src/tools/nurapid_sim" --dump-cache "$gang_dir/off.json" \
            > "$gang_dir/off.dump"
        cmp -s "$gang_dir/on.dump" "$gang_dir/off.dump" || {
            echo "gang bracket: gang-on and gang-off sweeps disagree" \
                 "(diff $gang_dir/on.dump $gang_dir/off.dump)" >&2
            exit 1; }

        # Cohort-identity bracket: footprint tiling with a 1-byte LLC
        # budget (one lane per cohort, maximum re-traversal) must fill
        # a cache whose normalized dump matches the naive all-lanes
        # gang byte for byte.
        echo "=== [$config] cohort-identity bracket (footprint vs naive) ==="
        NURAPID_SIM_SCALE=0.02 NURAPID_RUN_CACHE="$gang_dir/tiled.json" \
            NURAPID_GANG_SCHED=footprint NURAPID_GANG_LLC_BYTES=1 \
            "$dir/src/tools/nurapid_sim" --org all --suite --gang on \
            > /dev/null
        NURAPID_SIM_SCALE=0.02 NURAPID_RUN_CACHE="$gang_dir/naive.json" \
            NURAPID_GANG_SCHED=naive \
            "$dir/src/tools/nurapid_sim" --org all --suite --gang on \
            > /dev/null
        "$dir/src/tools/nurapid_sim" --dump-cache "$gang_dir/tiled.json" \
            > "$gang_dir/tiled.dump"
        "$dir/src/tools/nurapid_sim" --dump-cache "$gang_dir/naive.json" \
            > "$gang_dir/naive.dump"
        cmp -s "$gang_dir/tiled.dump" "$gang_dir/naive.dump" || {
            echo "cohort bracket: footprint and naive gang scheduling" \
                 "disagree (diff $gang_dir/tiled.dump" \
                 "$gang_dir/naive.dump)" >&2
            exit 1; }
    fi

    echo "=== [$config] fuzz smoke ($fuzz_iters iters, audits on) ==="
    NURAPID_AUDIT=1 NURAPID_AUDIT_INTERVAL=512 \
        "$dir/src/tools/nurapid_fuzz" --iters "$fuzz_iters" \
        --dump-dir "$dir"

    if [ "$config" = "profile" ]; then
        echo "=== [$config] perf smoke (short cold sweep, profiler on) ==="
        smoke_cache="$dir/perf_smoke_cache.json"
        rm -f "$smoke_cache"
        # Drop cached distilled streams so the smoke always pays (and
        # profiles) the distillation itself, not just an mmap load.
        rm -f "$dir/trace_cache"/*.dtc
        smoke_log="$dir/perf_smoke.log"
        sweep_trace="$dir/engine_sweep_trace.json"
        (export NURAPID_SIM_SCALE=0.05 NURAPID_RUN_CACHE="$smoke_cache" &&
            run_logged "$smoke_log" 2 \
                sh scripts/regen_bench.sh "$dir" --quiet --repeat 1 \
                    --engine-trace-out "$sweep_trace")
        grep -q '^\[profile\]' "$smoke_log" || {
            echo "perf smoke: no [profile] footer in sweep output" >&2
            exit 1
        }
        [ -s "$smoke_cache" ] || {
            echo "perf smoke: sweep left no run cache" >&2
            exit 1
        }
        # All 17 bench binaries appended into one whole-sweep trace,
        # and their [engine] footers together must attribute >= 95%
        # of the sweep's summed process wall time to engine stages.
        [ -s "$sweep_trace" ] || {
            echo "perf smoke: sweep wrote no engine trace" >&2
            exit 1
        }
        awk '/^\[engine\] wall/ { gsub(/,/, ""); n++; w += $3; c += $7 }
             END { pct = w > 0 ? 100 * c / w : 0;
                   printf "perf smoke: engine spans cover %.1f%%" \
                          " of sweep wall (%d footers)\n", pct, n;
                   exit !(n >= 17 && pct >= 95) }' "$smoke_log" || {
            echo "perf smoke: engine footer coverage below 95% of the" \
                 "sweep wall (see $smoke_log)" >&2
            exit 1
        }

        # Distillation must show up in the profile and pay off: rerun
        # the same short sweep with the live loop (NURAPID_DISTILL=0)
        # and require a non-zero distill bucket plus a smaller core
        # bucket in the distilled run.
        echo "=== [$config] perf smoke (distill off, for comparison) ==="
        off_cache="$dir/perf_smoke_cache_off.json"
        rm -f "$off_cache"
        off_log="$dir/perf_smoke_off.log"
        (export NURAPID_DISTILL=0 NURAPID_SIM_SCALE=0.05 \
            NURAPID_RUN_CACHE="$off_cache" &&
            run_logged "$off_log" 1 \
                sh scripts/regen_bench.sh "$dir" --quiet --repeat 1)
        # Sums a named footer bucket ("distill 0.123s" ...) over every
        # [profile] line in a log. Values inside the parenthesized
        # core breakdown carry trailing punctuation ("0.123s)"), so
        # strip everything non-numeric.
        bucket_sum() {
            grep '^\[profile\]' "$1" | awk -v key="$2" '
                { for (i = 1; i < NF; i++)
                      if ($i == key) { v = $(i + 1);
                                       gsub(/[^0-9.]/, "", v);
                                       s += v } }
                END { printf "%.3f", s }'
        }
        distill_s=$(bucket_sum "$smoke_log" distill)
        core_on_s=$(bucket_sum "$smoke_log" core)
        core_off_s=$(bucket_sum "$off_log" core)
        gang_s=$(bucket_sum "$smoke_log" gang)
        recency_s=$(bucket_sum "$smoke_log" recency)
        echo "perf smoke: distill ${distill_s}s," \
             "core ${core_on_s}s (distilled) vs ${core_off_s}s (live)"
        awk -v d="$distill_s" 'BEGIN { exit !(d > 0) }' || {
            echo "perf smoke: no Distill bucket in the profile" >&2
            exit 1
        }
        awk -v on="$core_on_s" -v off="$core_off_s" \
            'BEGIN { exit !(on < off) }' || {
            echo "perf smoke: distilled core bucket (${core_on_s}s) did" \
                 "not shrink vs live (${core_off_s}s)" >&2
            exit 1
        }
        # The sweep batches all organizations per figure, so gang
        # replay must actually engage and show up in the profile.
        echo "perf smoke: gang bucket ${gang_s}s"
        awk -v g="$gang_s" 'BEGIN { exit !(g > 0) }' || {
            echo "perf smoke: no Gang bucket in the profile" >&2
            exit 1
        }
        # The packed rank planes carry their own footer slice; a zero
        # bucket means the recency probes fell off the hot paths.
        echo "perf smoke: recency bucket ${recency_s}s"
        awk -v r="$recency_s" 'BEGIN { exit !(r > 0) }' || {
            echo "perf smoke: no Recency bucket in the profile" >&2
            exit 1
        }

        # Sweep dump-cache identity: the distilled and live sweeps
        # above simulated the same 267 configurations; their caches
        # must be bit-identical modulo wall_seconds (--dump-cache
        # zeroes it), or a replay path diverged somewhere the unit
        # suite did not reach.
        echo "=== [$config] sweep dump-cache identity (267 configs) ==="
        "$dir/src/tools/nurapid_sim" --dump-cache "$smoke_cache" \
            > "$dir/sweep_on.dump"
        "$dir/src/tools/nurapid_sim" --dump-cache "$off_cache" \
            > "$dir/sweep_off.dump"
        cmp -s "$dir/sweep_on.dump" "$dir/sweep_off.dump" || {
            echo "sweep identity: distilled and live sweeps left" \
                 "different caches (diff $dir/sweep_on.dump" \
                 "$dir/sweep_off.dump)" >&2
            exit 1
        }
        sweep_entries=$(grep -o '"key"' "$smoke_cache" | wc -l)
        [ "$sweep_entries" -eq 267 ] || {
            echo "sweep identity: expected 267 unique configurations," \
                 "cache holds $sweep_entries" >&2
            exit 1
        }

        # Wall-time ratchet on representative sim-driven benches: more
        # than 25% over this host's recorded baseline fails the gate.
        # The baseline files are per-host so numbers from different
        # machines never compare against each other; each is recorded
        # on first run and ratcheted downward on improvement. Delete
        # one to re-baseline after an intentional slowdown.
        # bench_ablation_pointers exercises the NuRAPID pointer planes;
        # bench_lru_approximation hammers exactly the recency state the
        # packed rank planes replaced.
        guard_dir="scripts/perf-baselines"
        mkdir -p "$guard_dir"
        for guard_bench in bench_ablation_pointers \
                           bench_lru_approximation; do
            echo "=== [$config] perf guard ($guard_bench) ==="
            guard_file="$guard_dir/$guard_bench.$(uname -n).s"
            guard_log="$dir/perf_guard_$guard_bench.log"
            guard_t0=$(date +%s.%N)
            (export NURAPID_SIM_SCALE=0.05 &&
                run_logged "$guard_log" 1 \
                    "$dir/bench/$guard_bench")
            guard_t1=$(date +%s.%N)
            guard_s=$(awk -v a="$guard_t0" -v b="$guard_t1" \
                'BEGIN { printf "%.2f", b - a }')
            if [ ! -s "$guard_file" ]; then
                echo "$guard_s" > "$guard_file"
                echo "perf guard: recorded baseline ${guard_s}s" \
                     "in $guard_file"
            else
                guard_base=$(cat "$guard_file")
                echo "perf guard: ${guard_s}s vs baseline ${guard_base}s"
                awk -v s="$guard_s" -v b="$guard_base" \
                    'BEGIN { exit !(s <= b * 1.25) }' || {
                    echo "perf guard: $guard_bench took" \
                         "${guard_s}s, more than 25% over the" \
                         "${guard_base}s baseline in $guard_file" >&2
                    exit 1
                }
                if awk -v s="$guard_s" -v b="$guard_base" \
                    'BEGIN { exit !(s < b) }'; then
                    echo "$guard_s" > "$guard_file"
                fi
            fi
        done

        # Same ratchet on the whole cold sweep (the first perf smoke
        # above ran cold with engine tracing attached), so the
        # observability layer itself can never quietly tax the sweep.
        echo "=== [$config] perf guard (cold sweep wall) ==="
        sweep_ms=$(grep '"total_wall_ms"' "$dir/BENCH_sweep.json" |
            grep -o '[0-9][0-9]*')
        sweep_guard="$guard_dir/sweep_cold.$(uname -n).ms"
        if [ ! -s "$sweep_guard" ]; then
            echo "$sweep_ms" > "$sweep_guard"
            echo "perf guard: recorded cold-sweep baseline ${sweep_ms}ms" \
                 "in $sweep_guard"
        else
            sweep_base=$(cat "$sweep_guard")
            echo "perf guard: cold sweep ${sweep_ms}ms vs baseline" \
                 "${sweep_base}ms"
            awk -v s="$sweep_ms" -v b="$sweep_base" \
                'BEGIN { exit !(s <= b * 1.25) }' || {
                echo "perf guard: cold sweep took ${sweep_ms}ms, more" \
                     "than 25% over the ${sweep_base}ms baseline in" \
                     "$sweep_guard" >&2
                exit 1
            }
            if awk -v s="$sweep_ms" -v b="$sweep_base" \
                'BEGIN { exit !(s < b) }'; then
                echo "$sweep_ms" > "$sweep_guard"
            fi
        fi
    fi
done

end=$(date +%s)
echo "check.sh: all configs ($configs) clean in $((end - start)) s"
